package ruleserver_test

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/obs"
	"acclaim/internal/ruleserver"
)

// pipeClient starts a wire server conn over net.Pipe and returns a
// handshaken client. The server goroutine exits when the client (or
// the test cleanup) closes its end.
func pipeClient(t *testing.T, reg *ruleserver.Registry, tenants []ruleserver.TenantKey) *ruleserver.WireClient {
	t.Helper()
	ws := ruleserver.NewWireServer(reg)
	cliEnd, srvEnd := net.Pipe()
	//acclaim:goroutine-owner test server conn; exits when the client end closes
	go ws.ServeConn(srvEnd)
	c, err := ruleserver.NewWireClient(cliEnd, tenants)
	if err != nil {
		cliEnd.Close()
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func wireFixtureRegistry(t *testing.T) (*ruleserver.Registry, []ruleserver.TenantKey) {
	t.Helper()
	reg := ruleserver.NewRegistry()
	rng := rand.New(rand.NewSource(11))
	a := ruleserver.TenantKey{Cluster: "a", JobClass: "batch", MPIVer: "mpich"}
	b := ruleserver.TenantKey{Cluster: "b", JobClass: "debug", MPIVer: "ompi"}
	if err := reg.Swap(a, fixtureFile()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap(b, genFile(rng, "bcast", "allreduce", "gather")); err != nil {
		t.Fatal(err)
	}
	return reg, []ruleserver.TenantKey{a, b}
}

func TestWireClientRoundTrip(t *testing.T) {
	reg, tenants := wireFixtureRegistry(t)
	unknown := ruleserver.TenantKey{Cluster: "ghost", JobClass: "x", MPIVer: "y"}
	c := pipeClient(t, reg, append(tenants, unknown))

	if !c.TenantFound(0) || !c.TenantFound(1) {
		t.Fatal("known tenants not flagged found in hello ack")
	}
	if c.TenantFound(2) || c.TenantFound(99) || c.TenantFound(-1) {
		t.Fatal("unknown or out-of-range tenant flagged found")
	}

	// Batches across tenants and collectives must answer exactly as
	// direct registry lookups, over several batches so the dictionary
	// delta path (first batch) and warm path (later batches) both run.
	rng := rand.New(rand.NewSource(5))
	qs := make([]ruleserver.WireQuery, 64)
	res := make([]ruleserver.WireResult, 64)
	for round := 0; round < 5; round++ {
		for i := range qs {
			qs[i] = ruleserver.WireQuery{
				Tenant: rng.Intn(3),
				Coll:   []coll.Collective{coll.Bcast, coll.Allreduce, coll.Gather, coll.Reduce}[rng.Intn(4)],
				Nodes:  1 + rng.Intn(64),
				PPN:    1 + rng.Intn(32),
				Msg:    1 << uint(rng.Intn(21)),
			}
		}
		if err := c.LookupBatch(qs, res); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, q := range qs {
			var wantAlg string
			var wantOK bool
			if q.Tenant < 2 {
				wantAlg, wantOK = reg.Lookup(tenants[q.Tenant], q.Coll, q.Nodes, q.PPN, q.Msg)
			}
			if res[i].OK != wantOK || res[i].Alg != wantAlg {
				t.Fatalf("round %d query %d (%+v): wire = (%q,%v), direct = (%q,%v)",
					round, i, q, res[i].Alg, res[i].OK, wantAlg, wantOK)
			}
		}
	}

	// Single-query convenience path.
	alg, ok, err := c.Lookup(ruleserver.WireQuery{Tenant: 0, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 512})
	if err != nil || !ok || alg != "binomial" {
		t.Fatalf("Lookup = (%q,%v,%v), want (binomial,true,nil)", alg, ok, err)
	}
}

func TestWireClientValidation(t *testing.T) {
	reg, tenants := wireFixtureRegistry(t)
	c := pipeClient(t, reg, tenants[:1])

	res := make([]ruleserver.WireResult, 1)
	cases := []struct {
		name string
		q    ruleserver.WireQuery
		want string
	}{
		{"tenant out of range", ruleserver.WireQuery{Tenant: 5, Coll: coll.Bcast, Nodes: 1, PPN: 1, Msg: 1}, "tenant 5 out of range"},
		{"negative tenant", ruleserver.WireQuery{Tenant: -1, Coll: coll.Bcast, Nodes: 1, PPN: 1, Msg: 1}, "tenant -1 out of range"},
		{"bad collective", ruleserver.WireQuery{Coll: coll.Collective(99), Nodes: 1, PPN: 1, Msg: 1}, "not served"},
		{"negative nodes", ruleserver.WireQuery{Coll: coll.Bcast, Nodes: -1, PPN: 1, Msg: 1}, "out of u32 range"},
		{"negative msg", ruleserver.WireQuery{Coll: coll.Bcast, Nodes: 1, PPN: 1, Msg: -5}, "out of u32 range"},
	}
	for _, tc := range cases {
		err := c.LookupBatch([]ruleserver.WireQuery{tc.q}, res)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// Client-side validation failures must not poison the connection.
	if _, ok, err := c.Lookup(ruleserver.WireQuery{Tenant: 0, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 512}); err != nil || !ok {
		t.Fatalf("connection poisoned after validation errors: ok=%v err=%v", ok, err)
	}

	// Short result slice and oversized batch.
	big := make([]ruleserver.WireQuery, 2)
	if err := c.LookupBatch(big, res[:1]); err == nil {
		t.Fatal("short result slice accepted")
	}
	if err := c.LookupBatch(make([]ruleserver.WireQuery, ruleserver.MaxWireBatch+1),
		make([]ruleserver.WireResult, ruleserver.MaxWireBatch+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// Empty batch is a no-op.
	if err := c.LookupBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// rawConn dials the server and returns the raw pipe end for crafting
// malformed frames by hand.
func rawServerConn(t *testing.T, reg *ruleserver.Registry) net.Conn {
	t.Helper()
	ws := ruleserver.NewWireServer(reg)
	cliEnd, srvEnd := net.Pipe()
	//acclaim:goroutine-owner test server conn; exits when the client end closes or the protocol errors out
	go ws.ServeConn(srvEnd)
	t.Cleanup(func() { cliEnd.Close() })
	return cliEnd
}

func writeRawFrame(t *testing.T, c net.Conn, payload []byte) {
	t.Helper()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// readRawFrame reads one frame, expecting it to arrive whole.
func readRawFrame(t *testing.T, c net.Conn) []byte {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestWireServerRejectsBadHello(t *testing.T) {
	reg, _ := wireFixtureRegistry(t)
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"wrong frame type", []byte{0x7f, 0, 0, 0, 0, 0, 0, 0}, "want hello"},
		{"bad magic", []byte{0x01, 'X', 'X', 'X', 'X', 1, 1, 0, 1, 0, 'a', 1, 0, 'b', 1, 0, 'c'}, "bad magic"},
		{"bad version", []byte{0x01, 'A', 'C', 'L', 'M', 9, 1, 0, 1, 0, 'a', 1, 0, 'b', 1, 0, 'c'}, "version 9"},
		{"zero tenants", []byte{0x01, 'A', 'C', 'L', 'M', 1, 0, 0}, "tenant count 0"},
		{"truncated tenant", []byte{0x01, 'A', 'C', 'L', 'M', 1, 1, 0, 9, 0, 'a'}, "truncated hello"},
		{"trailing bytes", []byte{0x01, 'A', 'C', 'L', 'M', 1, 1, 0, 1, 0, 'a', 1, 0, 'b', 1, 0, 'c', 0xff}, "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := rawServerConn(t, reg)
			writeRawFrame(t, c, tc.payload)
			frame := readRawFrame(t, c)
			if frame[0] != 0x05 {
				t.Fatalf("frame type 0x%02x, want error frame", frame[0])
			}
			if !strings.Contains(string(frame[3:]), tc.want) {
				t.Fatalf("error %q, want containing %q", frame[3:], tc.want)
			}
			// The server closes after an error frame.
			if _, err := io.ReadFull(c, make([]byte, 1)); err == nil {
				t.Fatal("connection still open after error frame")
			}
		})
	}
}

func TestWireServerRejectsOversizedFrame(t *testing.T) {
	reg, _ := wireFixtureRegistry(t)
	c := rawServerConn(t, reg)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], ruleserver.MaxWireFrameBytes+1)
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// An oversized length prefix drops the connection without reading
	// the payload (nothing to trust in the stream after it).
	if _, err := io.ReadFull(c, make([]byte, 1)); err == nil {
		t.Fatal("connection still open after oversized length prefix")
	}
}

// truncConn passes the handshake through and then cuts the first batch
// response short, closing the connection mid-frame — the short-read
// case the client must surface as an error, not hang on or misparse.
type truncConn struct {
	net.Conn
	writes int
}

func (c *truncConn) Write(p []byte) (int, error) {
	c.writes++
	// Write 1 is the hello-ack header, write 2 its payload; write 3 is
	// the first batch response (assembled as one buffer).
	if c.writes <= 2 {
		return c.Conn.Write(p)
	}
	n, err := c.Conn.Write(p[:7])
	c.Conn.Close()
	if err == nil {
		err = io.ErrClosedPipe
	}
	return n, err
}

func TestWireClientTruncatedResponse(t *testing.T) {
	reg, tenants := wireFixtureRegistry(t)
	ws := ruleserver.NewWireServer(reg)
	cliEnd, srvEnd := net.Pipe()
	//acclaim:goroutine-owner test server conn; exits when its truncating conn closes
	go ws.ServeConn(&truncConn{Conn: srvEnd})
	c, err := ruleserver.NewWireClient(cliEnd, tenants)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer c.Close()
	_, _, err = c.Lookup(ruleserver.WireQuery{Tenant: 0, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 512})
	if err == nil {
		t.Fatal("truncated response frame did not error")
	}
}

func TestDialWireRefused(t *testing.T) {
	// A listener that is immediately closed: DialWire must surface the
	// transport error rather than hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := ruleserver.DialWire(addr, []ruleserver.TenantKey{ruleserver.DefaultTenant}); err == nil {
		t.Fatal("DialWire to closed listener succeeded")
	}
}

func TestWireServeListener(t *testing.T) {
	reg, tenants := wireFixtureRegistry(t)
	ws := ruleserver.NewWireServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	//acclaim:goroutine-owner test acceptor; exits when the listener closes below
	go func() { done <- ws.Serve(ln) }()

	c, err := ruleserver.DialWire(ln.Addr().String(), tenants)
	if err != nil {
		t.Fatal(err)
	}
	alg, ok, err := c.Lookup(ruleserver.WireQuery{Tenant: 0, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 512})
	if err != nil || !ok || alg != "binomial" {
		t.Fatalf("over TCP: (%q,%v,%v)", alg, ok, err)
	}
	c.Close()
	ln.Close()
	if err := <-done; err == nil {
		t.Fatal("Serve returned nil after listener close")
	}
}

func TestWireTargetName(t *testing.T) {
	if got := ruleserver.WireTargetName("127.0.0.1:9090"); got != "tcp://127.0.0.1:9090" {
		t.Fatalf("WireTargetName = %q", got)
	}
	if got := ruleserver.WireTargetName("unix:///tmp/a.sock"); got != "unix:///tmp/a.sock" {
		t.Fatalf("WireTargetName with scheme = %q", got)
	}
}

// TestWireServerRegister checks the wire.* transport metrics: one
// handshaken connection serving one batch, then a second connection
// dropped on a protocol error.
func TestWireServerRegister(t *testing.T) {
	reg, tenants := wireFixtureRegistry(t)
	ws := ruleserver.NewWireServer(reg)
	mreg := obs.NewRegistry()
	ws.Register(mreg)
	ws.Register(nil) // no-op

	cliEnd, srvEnd := net.Pipe()
	done := make(chan struct{})
	//acclaim:goroutine-owner test server conn; exits when the client end closes
	go func() { ws.ServeConn(srvEnd); close(done) }()
	c, err := ruleserver.NewWireClient(cliEnd, tenants)
	if err != nil {
		t.Fatal(err)
	}
	qs := []ruleserver.WireQuery{
		{Tenant: 0, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 512},
		{Tenant: 1, Coll: coll.Bcast, Nodes: 4, PPN: 8, Msg: 512},
	}
	res := make([]ruleserver.WireResult, len(qs))
	if err := c.LookupBatch(qs, res); err != nil {
		t.Fatal(err)
	}
	if got := mreg.Snapshot()["wire.active_connections"]; got != float64(1) {
		t.Fatalf("wire.active_connections = %v, want 1", got)
	}
	c.Close()
	<-done

	// A garbage hello counts as a protocol error.
	cliEnd2, srvEnd2 := net.Pipe()
	done2 := make(chan struct{})
	//acclaim:goroutine-owner test server conn; exits when the hello is rejected
	go func() { ws.ServeConn(srvEnd2); close(done2) }()
	writeRawFrame(t, cliEnd2, []byte{0xFF, 0x00})
	if frame := readRawFrame(t, cliEnd2); len(frame) == 0 || frame[0] != 0x05 {
		t.Fatalf("want error frame for garbage hello, got % x", frame)
	}
	<-done2
	cliEnd2.Close()

	snap := mreg.Snapshot()
	for name, want := range map[string]float64{
		"wire.batches_total":      1,
		"wire.queries_total":      2,
		"wire.proto_errors_total": 1,
		"wire.active_connections": 0,
	} {
		if got := snap[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}
