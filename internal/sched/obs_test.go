package sched

import (
	"testing"

	"acclaim/internal/cluster"
	"acclaim/internal/obs"
)

func TestPlanWaveObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	alloc := cluster.TopologySingleRack() // one rack: everything after the first request stalls

	wave, rest := PlanWaveObs(alloc, reqs(4, 4, 4), met)
	if len(wave) != 1 || len(rest) != 2 {
		t.Fatalf("wave/rest = %d/%d, want 1/2", len(wave), len(rest))
	}
	if got := met.Waves.Load(); got != 1 {
		t.Errorf("waves_total = %d, want 1", got)
	}
	if got := met.Stalls.Load(); got != 2 {
		t.Errorf("stalls_total = %d, want 2 (the layer-conflict deferrals)", got)
	}
	ws := met.WaveSize.Snapshot()
	if ws.Count != 1 || ws.Sum != 1 {
		t.Errorf("wave_size snapshot = %+v, want one observation of 1", ws)
	}
}

func TestPlanAllObsCountsEveryWave(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	alloc := cluster.TopologySingleRack()

	waves, err := PlanAllObs(alloc, reqs(4, 4, 4), met)
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Waves.Load(); got != uint64(len(waves)) {
		t.Errorf("waves_total = %d, want %d", got, len(waves))
	}
	var placed uint64
	for _, w := range waves {
		placed += uint64(len(w))
	}
	if got := met.WaveSize.Snapshot(); got.Sum != float64(placed) {
		t.Errorf("wave_size sum = %v, want %d placements", got.Sum, placed)
	}
}

// TestPlanWaveObsNilMetrics pins that the nil-metrics path is identical
// to the plain planner.
func TestPlanWaveObsNilMetrics(t *testing.T) {
	alloc := cluster.TopologyMaxParallel()
	w1, r1 := PlanWave(alloc, reqs(4, 4))
	w2, r2 := PlanWaveObs(alloc, reqs(4, 4), nil)
	if len(w1) != len(w2) || len(r1) != len(r2) {
		t.Errorf("nil-metrics plan differs: %d/%d vs %d/%d", len(w1), len(r1), len(w2), len(r2))
	}
}
