// Package sched implements ACCLAiM's topology-aware parallel benchmark
// scheduler (Section IV-D). Given a variance-sorted list of benchmark
// requests and the job's allocation, it greedily packs one "wave" of
// benchmarks onto disjoint sets of sequential nodes, never letting two
// benchmarks share a rack (layer 1) and, by virtue of sequential
// placement, never letting two multi-rack benchmarks share a rack pair
// (layer 2). Waves are executed in parallel; the paper reports 1–1.4x
// collection speedups from 1–4 simultaneous benchmarks.
package sched

import (
	"errors"
	"fmt"

	"acclaim/internal/cluster"
	"acclaim/internal/obs"
)

// Metrics are the scheduler's registry handles. Build with NewMetrics;
// pass them to PlanWaveObs/PlanAllObs (nil disables recording).
type Metrics struct {
	Waves    *obs.Counter   // sched.waves_total: planned waves
	WaveSize *obs.Histogram // sched.wave_size: benchmarks packed per wave
	// Stalls counts layer-conflict stalls: requests that were ready but
	// had to wait for a later wave because placing them would share a
	// rack (layer 1) or rack pair (layer 2) with an earlier placement.
	Stalls *obs.Counter // sched.stalls_total
}

// NewMetrics registers the scheduler metric set on reg (nil reg gives
// all-nil, no-op handles).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Waves:    reg.Counter("sched.waves_total"),
		WaveSize: reg.Histogram("sched.wave_size", 1, 2, 4, 8, 16, 32, 64),
		Stalls:   reg.Counter("sched.stalls_total"),
	}
}

// Request asks for one benchmark run needing Nodes nodes. Priority is
// the jackknife variance of the underlying training point: higher runs
// first. ID is an opaque caller token (e.g. candidate index).
type Request struct {
	ID       int
	Nodes    int
	Priority float64
}

// Placement is a scheduled request bound to concrete positions in the
// allocation. NodeIdx indexes alloc.Nodes (not physical node IDs).
type Placement struct {
	Request
	NodeIdx []int
}

// PhysicalNodes resolves the placement to physical node IDs.
func (p Placement) PhysicalNodes(alloc cluster.Allocation) []int {
	nodes := make([]int, len(p.NodeIdx))
	for i, idx := range p.NodeIdx {
		nodes[i] = alloc.Nodes[idx]
	}
	return nodes
}

// PlanWave runs the paper's greedy algorithm over the requests, which
// must already be sorted by descending priority (the caller sorts by
// variance). It returns the placements of one wave and the requests
// that did not fit. The algorithm:
//
//  1. Take the highest-priority unscheduled request p needing n nodes.
//  2. Try to place p on the next n unused sequential nodes.
//  3. If it fits, mark those nodes — and all remaining nodes in the
//     racks they touch — as used, and repeat.
//  4. If it does not fit, stop and run the wave.
func PlanWave(alloc cluster.Allocation, reqs []Request) (wave []Placement, unplaced []Request) {
	return PlanWaveObs(alloc, reqs, nil)
}

// PlanWaveObs is PlanWave with observability: when met is non-nil it
// records the wave's size and counts the requests stalled past the
// wave boundary by the congestion constraints.
func PlanWaveObs(alloc cluster.Allocation, reqs []Request, met *Metrics) (wave []Placement, unplaced []Request) {
	wave, unplaced = planWave(alloc, reqs)
	if met != nil {
		met.Waves.Inc()
		met.WaveSize.Observe(float64(len(wave)))
		met.Stalls.Add(uint64(len(unplaced)))
	}
	return wave, unplaced
}

func planWave(alloc cluster.Allocation, reqs []Request) (wave []Placement, unplaced []Request) {
	n := alloc.Size()
	used := make([]bool, n)
	cursor := 0
	for ri, req := range reqs {
		if req.Nodes <= 0 || req.Nodes > n {
			// Unsatisfiable on this allocation; pass it back.
			unplaced = append(unplaced, reqs[ri:]...)
			return wave, unplaced
		}
		// Advance to the first unused node.
		for cursor < n && used[cursor] {
			cursor++
		}
		if cursor+req.Nodes > n {
			unplaced = append(unplaced, reqs[ri:]...)
			return wave, unplaced
		}
		// The next req.Nodes sequential positions must all be unused;
		// because we consume racks wholesale, they always are once the
		// cursor is on an unused node — but verify defensively.
		idx := make([]int, req.Nodes)
		for i := 0; i < req.Nodes; i++ {
			if used[cursor+i] {
				unplaced = append(unplaced, reqs[ri:]...)
				return wave, unplaced
			}
			idx[i] = cursor + i
		}
		wave = append(wave, Placement{Request: req, NodeIdx: idx})
		// Mark the placed nodes and every remaining node in the touched
		// racks as used.
		touched := make(map[int]bool)
		for _, i := range idx {
			used[i] = true
			touched[alloc.Machine.RackOf(alloc.Nodes[i])] = true
		}
		for i := cursor; i < n; i++ {
			if !used[i] && touched[alloc.Machine.RackOf(alloc.Nodes[i])] {
				used[i] = true
			}
		}
		cursor += req.Nodes
	}
	return wave, nil
}

// PlanAll repeatedly plans waves until every request is scheduled,
// returning the full multi-wave schedule. It returns an error if some
// request can never fit (needs more nodes than the allocation has).
func PlanAll(alloc cluster.Allocation, reqs []Request) ([][]Placement, error) {
	return PlanAllObs(alloc, reqs, nil)
}

// PlanAllObs is PlanAll with per-wave observability recorded on met
// (nil disables recording).
func PlanAllObs(alloc cluster.Allocation, reqs []Request, met *Metrics) ([][]Placement, error) {
	var waves [][]Placement
	pending := append([]Request(nil), reqs...)
	for len(pending) > 0 {
		wave, rest := PlanWaveObs(alloc, pending, met)
		if len(wave) == 0 {
			return nil, fmt.Errorf("sched: request for %d nodes cannot fit on %d-node allocation",
				rest[0].Nodes, alloc.Size())
		}
		waves = append(waves, wave)
		pending = rest
	}
	return waves, nil
}

// ErrConflict reports a wave whose placements would share network
// resources the paper's constraints forbid.
var ErrConflict = errors.New("sched: wave violates congestion constraints")

// CheckWave verifies the paper's congestion-freedom invariants for one
// wave: no two placements share a rack, and no two multi-rack placements
// share a rack pair. It returns ErrConflict (wrapped with detail) on
// violation.
func CheckWave(alloc cluster.Allocation, wave []Placement) error {
	rackOwner := make(map[int]int) // rack -> placement index
	pairOwner := make(map[int]int) // rack pair -> placement index (multi-rack runs only)
	for pi, p := range wave {
		racks := make(map[int]bool)
		for _, idx := range p.NodeIdx {
			racks[alloc.Machine.RackOf(alloc.Nodes[idx])] = true
		}
		for r := range racks {
			if prev, ok := rackOwner[r]; ok && prev != pi {
				return fmt.Errorf("%w: placements %d and %d share rack %d", ErrConflict, prev, pi, r)
			}
			rackOwner[r] = pi
		}
		if len(racks) > 1 {
			for r := range racks {
				pair := alloc.Machine.PairOf(r)
				if prev, ok := pairOwner[pair]; ok && prev != pi {
					return fmt.Errorf("%w: multi-rack placements %d and %d share rack pair %d", ErrConflict, prev, pi, pair)
				}
				pairOwner[pair] = pi
			}
		}
	}
	return nil
}

// Parallelism summarises a schedule: how many benchmarks ran in each
// wave (the paper's Figure 13(b) series).
func Parallelism(waves [][]Placement) []int {
	out := make([]int, len(waves))
	for i, w := range waves {
		out[i] = len(w)
	}
	return out
}
