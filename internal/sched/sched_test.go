package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acclaim/internal/cluster"
)

func reqs(nodes ...int) []Request {
	rs := make([]Request, len(nodes))
	for i, n := range nodes {
		rs[i] = Request{ID: i, Nodes: n, Priority: float64(len(nodes) - i)}
	}
	return rs
}

func TestPlanWaveSingleRackSerializes(t *testing.T) {
	alloc := cluster.TopologySingleRack() // 64 nodes, one rack
	wave, rest := PlanWave(alloc, reqs(4, 4, 4))
	if len(wave) != 1 {
		t.Fatalf("single rack wave size = %d, want 1 (whole rack consumed)", len(wave))
	}
	if len(rest) != 2 {
		t.Fatalf("unplaced = %d, want 2", len(rest))
	}
	if err := CheckWave(alloc, wave); err != nil {
		t.Error(err)
	}
}

func TestPlanWaveMaxParallel(t *testing.T) {
	alloc := cluster.TopologyMaxParallel() // 64 nodes on 64 separate pairs
	wave, rest := PlanWave(alloc, reqs(4, 4, 4, 4))
	if len(wave) != 4 {
		t.Fatalf("max-parallel wave size = %d, want 4", len(wave))
	}
	if len(rest) != 0 {
		t.Fatalf("unplaced = %d, want 0", len(rest))
	}
	if err := CheckWave(alloc, wave); err != nil {
		t.Error(err)
	}
}

func TestPlanWaveTwoPairs(t *testing.T) {
	// 4 racks of 16: a 16-node run consumes exactly one rack, so up to
	// 4 single-rack runs fit in one wave.
	alloc := cluster.TopologyTwoPairs()
	wave, rest := PlanWave(alloc, reqs(16, 16, 16, 16))
	if len(wave) != 4 || len(rest) != 0 {
		t.Fatalf("wave=%d rest=%d, want 4/0", len(wave), len(rest))
	}
	// An 8-node run still consumes its whole rack.
	wave, rest = PlanWave(alloc, reqs(8, 8, 8, 8, 8))
	if len(wave) != 4 || len(rest) != 1 {
		t.Fatalf("8-node runs: wave=%d rest=%d, want 4/1", len(wave), len(rest))
	}
	if err := CheckWave(alloc, wave); err != nil {
		t.Error(err)
	}
}

func TestPlanWaveStopsAtFirstMisfit(t *testing.T) {
	// The paper's greedy exits at the first request that cannot fit,
	// even if later, smaller requests would.
	alloc := cluster.TopologyRackPair() // 64 nodes, 2 racks of 32
	wave, rest := PlanWave(alloc, reqs(40, 40, 2))
	if len(wave) != 1 {
		t.Fatalf("wave size = %d, want 1", len(wave))
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d, want 2 (greedy must not skip ahead)", len(rest))
	}
}

func TestPlanWaveSequentialPlacement(t *testing.T) {
	alloc := cluster.TopologyMaxParallel()
	wave, _ := PlanWave(alloc, reqs(3, 2))
	if len(wave) != 2 {
		t.Fatalf("wave size = %d", len(wave))
	}
	// First request gets indices 0,1,2; second 3,4.
	for i, want := range []int{0, 1, 2} {
		if wave[0].NodeIdx[i] != want {
			t.Errorf("placement 0 idx = %v", wave[0].NodeIdx)
		}
	}
	for i, want := range []int{3, 4} {
		if wave[1].NodeIdx[i] != want {
			t.Errorf("placement 1 idx = %v", wave[1].NodeIdx)
		}
	}
}

func TestPlanWaveOversizeRequest(t *testing.T) {
	alloc := cluster.TopologySingleRack()
	wave, rest := PlanWave(alloc, reqs(100))
	if len(wave) != 0 || len(rest) != 1 {
		t.Fatal("oversize request must be returned unplaced")
	}
	if _, err := PlanAll(alloc, reqs(100)); err == nil {
		t.Error("PlanAll must error on an unsatisfiable request")
	}
}

func TestPlanAllCoversEverything(t *testing.T) {
	alloc := cluster.TopologyTwoPairs()
	in := reqs(16, 8, 8, 4, 32, 2, 2, 2, 64, 16)
	waves, err := PlanAll(alloc, in)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, w := range waves {
		if err := CheckWave(alloc, w); err != nil {
			t.Errorf("wave violates constraints: %v", err)
		}
		for _, p := range w {
			if seen[p.ID] {
				t.Errorf("request %d scheduled twice", p.ID)
			}
			seen[p.ID] = true
			if len(p.NodeIdx) != p.Nodes {
				t.Errorf("request %d placed on %d nodes, want %d", p.ID, len(p.NodeIdx), p.Nodes)
			}
		}
	}
	if len(seen) != len(in) {
		t.Errorf("scheduled %d of %d requests", len(seen), len(in))
	}
}

// Property: for random request lists on random topologies, PlanAll
// schedules every request exactly once, never overlaps nodes within a
// wave, and every wave passes CheckWave.
func TestPlanAllProperty(t *testing.T) {
	topos := []cluster.Allocation{
		cluster.TopologySingleRack(),
		cluster.TopologyRackPair(),
		cluster.TopologyTwoPairs(),
		cluster.TopologyMaxParallel(),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alloc := topos[rng.Intn(len(topos))]
		n := 1 + rng.Intn(12)
		rs := make([]Request, n)
		for i := range rs {
			rs[i] = Request{ID: i, Nodes: 1 + rng.Intn(alloc.Size()), Priority: rng.Float64()}
		}
		waves, err := PlanAll(alloc, rs)
		if err != nil {
			return false
		}
		count := 0
		for _, w := range waves {
			if CheckWave(alloc, w) != nil {
				return false
			}
			used := make(map[int]bool)
			for _, p := range w {
				count++
				for _, idx := range p.NodeIdx {
					if used[idx] {
						return false
					}
					used[idx] = true
				}
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCheckWaveDetectsRackSharing(t *testing.T) {
	alloc := cluster.TopologySingleRack()
	bad := []Placement{
		{Request: Request{ID: 0, Nodes: 2}, NodeIdx: []int{0, 1}},
		{Request: Request{ID: 1, Nodes: 2}, NodeIdx: []int{2, 3}},
	}
	if err := CheckWave(alloc, bad); err == nil {
		t.Error("rack sharing not detected")
	}
}

func TestCheckWaveDetectsPairSharing(t *testing.T) {
	// 4 racks of 16 in 2 pairs: two multi-rack runs across the same pair.
	alloc := cluster.TopologyTwoPairs()
	idx := func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	// Run A uses nodes 0..17 (racks 0,1 = pair 0); run B uses 18..33
	// (racks 1,2) — shares rack 1 AND pair 0.
	bad := []Placement{
		{Request: Request{ID: 0, Nodes: 18}, NodeIdx: idx(0, 18)},
		{Request: Request{ID: 1, Nodes: 16}, NodeIdx: idx(18, 34)},
	}
	if err := CheckWave(alloc, bad); err == nil {
		t.Error("sharing not detected")
	}
}

func TestParallelism(t *testing.T) {
	waves := [][]Placement{{{}, {}}, {{}}}
	p := Parallelism(waves)
	if len(p) != 2 || p[0] != 2 || p[1] != 1 {
		t.Errorf("Parallelism = %v", p)
	}
}

func TestPhysicalNodes(t *testing.T) {
	alloc := cluster.TopologyMaxParallel()
	p := Placement{NodeIdx: []int{0, 1}}
	phys := p.PhysicalNodes(alloc)
	if phys[0] != alloc.Nodes[0] || phys[1] != alloc.Nodes[1] {
		t.Errorf("PhysicalNodes = %v", phys)
	}
}
