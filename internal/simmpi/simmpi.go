// Package simmpi is a virtual-time message-passing runtime: the MPI
// substrate the collective algorithms in internal/coll execute on.
//
// Each MPI rank is a goroutine with a private virtual clock in
// microseconds. Sends are eager: the sender is charged a small injection
// overhead and the message is stamped with its arrival time
// (sendClock + alpha + bytes/beta from the netmodel). A receive blocks
// until a matching message exists and advances the receiver's clock to
// max(ownClock, arrivalTime). This reproduces the latency/bandwidth
// timing of the classic Hockney model over arbitrary communication DAGs
// while still moving real bytes, so every collective algorithm is
// simultaneously timed and checked for correctness.
//
// Buffers may omit their backing bytes (timing-only mode) so large
// exhaustive benchmark sweeps do not pay for megabyte memcpy traffic;
// the virtual-time accounting is identical either way.
package simmpi

import (
	"fmt"
	"sync"

	"acclaim/internal/netmodel"
)

// Buf is a message buffer of logical length N bytes. Data is either nil
// (timing-only mode) or a slice of exactly N bytes. All collective
// algorithms are written against Buf so a single implementation serves
// both correctness tests (with data) and fast timing sweeps (without).
type Buf struct {
	N    int
	Data []byte
}

// MakeBuf returns a timing-only buffer of n bytes.
func MakeBuf(n int) Buf { return Buf{N: n} }

// BytesBuf wraps a concrete byte slice.
func BytesBuf(b []byte) Buf { return Buf{N: len(b), Data: b} }

// HasData reports whether the buffer carries real bytes.
func (b Buf) HasData() bool { return b.Data != nil }

// Slice returns the sub-buffer [lo, hi). It panics on out-of-range
// bounds, mirroring Go slice semantics.
func (b Buf) Slice(lo, hi int) Buf {
	if lo < 0 || hi < lo || hi > b.N {
		panic(fmt.Sprintf("simmpi: Slice[%d:%d] of %d-byte buffer", lo, hi, b.N))
	}
	if b.Data == nil {
		return Buf{N: hi - lo}
	}
	return Buf{N: hi - lo, Data: b.Data[lo:hi]}
}

// Clone returns a deep copy of the buffer.
func (b Buf) Clone() Buf {
	if b.Data == nil {
		return Buf{N: b.N}
	}
	d := make([]byte, b.N)
	copy(d, b.Data)
	return Buf{N: b.N, Data: d}
}

// Concat returns a new buffer holding b followed by c. The result
// carries data only if both operands do.
func (b Buf) Concat(c Buf) Buf {
	if b.Data == nil || c.Data == nil {
		return Buf{N: b.N + c.N}
	}
	d := make([]byte, 0, b.N+c.N)
	d = append(d, b.Data...)
	d = append(d, c.Data...)
	return Buf{N: b.N + c.N, Data: d}
}

// CopyInto writes src into b starting at offset off. Lengths must fit.
// Buffers without data ignore the byte copy but still validate bounds.
func (b Buf) CopyInto(off int, src Buf) {
	if off < 0 || off+src.N > b.N {
		panic(fmt.Sprintf("simmpi: CopyInto offset %d length %d into %d-byte buffer", off, src.N, b.N))
	}
	if b.Data != nil && src.Data != nil {
		copy(b.Data[off:off+src.N], src.Data)
	}
}

// Op is a reduction operator over bytes. All ops are associative and
// commutative, which is what MPI requires for reductions and what lets
// every reduction algorithm produce bit-identical results regardless of
// combining order.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota // bytewise sum modulo 256
	OpMax           // bytewise maximum
	OpXor           // bytewise exclusive or
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpXor:
		return "xor"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Combine folds src into dst elementwise: dst = dst (op) src. Both
// buffers must have equal length. Timing-only buffers skip the byte
// work.
func (op Op) Combine(dst, src Buf) {
	if dst.N != src.N {
		panic(fmt.Sprintf("simmpi: Combine of %d-byte and %d-byte buffers", dst.N, src.N))
	}
	if dst.Data == nil || src.Data == nil {
		return
	}
	switch op {
	case OpSum:
		for i := range dst.Data {
			dst.Data[i] += src.Data[i]
		}
	case OpMax:
		for i := range dst.Data {
			if src.Data[i] > dst.Data[i] {
				dst.Data[i] = src.Data[i]
			}
		}
	case OpXor:
		for i := range dst.Data {
			dst.Data[i] ^= src.Data[i]
		}
	default:
		panic(fmt.Sprintf("simmpi: unknown op %d", int(op)))
	}
}

// message is an in-flight transfer.
type message struct {
	buf     Buf
	arrival float64 // virtual time at which the bytes are available
}

// mailbox holds pending messages for one rank, matched by source rank in
// FIFO order per source (MPI's non-overtaking guarantee).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[int][]message
}

func newMailbox() *mailbox {
	mb := &mailbox{pending: make(map[int][]message)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(src int, m message) {
	mb.mu.Lock()
	mb.pending[src] = append(mb.pending[src], m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) take(src int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.pending[src]) == 0 {
		mb.cond.Wait()
	}
	q := mb.pending[src]
	m := q[0]
	if len(q) == 1 {
		delete(mb.pending, src)
	} else {
		mb.pending[src] = q[1:]
	}
	return m
}

// World is one job's communication universe: the network model plus a
// mailbox per rank.
type World struct {
	model *netmodel.Model
	mail  []*mailbox
}

// NewWorld creates a world for the model's ranks.
func NewWorld(model *netmodel.Model) *World {
	n := model.Ranks()
	w := &World{model: model, mail: make([]*mailbox, n)}
	for i := range w.mail {
		w.mail[i] = newMailbox()
	}
	return w
}

// Comm is one rank's handle on the world; the analogue of an MPI
// communicator bound to a rank. A Comm is confined to its rank's
// goroutine and must not be shared.
type Comm struct {
	w     *World
	rank  int
	clock float64
	sent  int // messages sent, for diagnostics
	recvd int // messages received, for diagnostics
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return len(c.w.mail) }

// Clock returns the rank's current virtual time in microseconds.
func (c *Comm) Clock() float64 { return c.clock }

// Model exposes the underlying network model (read-only).
func (c *Comm) Model() *netmodel.Model { return c.w.model }

// Stats returns the number of messages this rank sent and received.
func (c *Comm) Stats() (sent, received int) { return c.sent, c.recvd }

// Compute advances the rank's clock by us microseconds of local work
// (reduction arithmetic, packing). Negative durations panic.
func (c *Comm) Compute(us float64) {
	if us < 0 {
		panic("simmpi: negative compute time")
	}
	c.clock += us
}

// Send transmits buf to rank dst. It is eager: the sender pays only the
// injection overhead and continues; the message arrives at
// clock + transfer(from, to, bytes). Sending to oneself panics — the
// collective algorithms never do it, so it always indicates a bug.
func (c *Comm) Send(dst int, buf Buf) {
	if dst == c.rank {
		panic(fmt.Sprintf("simmpi: rank %d sending to itself", c.rank))
	}
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("simmpi: send to rank %d of %d", dst, c.Size()))
	}
	c.clock += c.w.model.SendOverhead()
	arrival := c.clock + c.w.model.Transfer(c.rank, dst, buf.N)
	// Clone data so sender reuse of the buffer cannot race the receiver.
	c.w.mail[dst].put(c.rank, message{buf: buf.Clone(), arrival: arrival})
	c.sent++
}

// Recv blocks until a message from src is available, advances the clock
// to the message's arrival time, and returns the payload.
func (c *Comm) Recv(src int) Buf {
	if src == c.rank {
		panic(fmt.Sprintf("simmpi: rank %d receiving from itself", c.rank))
	}
	if src < 0 || src >= c.Size() {
		panic(fmt.Sprintf("simmpi: recv from rank %d of %d", src, c.Size()))
	}
	m := c.w.mail[c.rank].take(src)
	if m.arrival > c.clock {
		c.clock = m.arrival
	}
	c.recvd++
	return m.buf
}

// Sendrecv sends sbuf to dst and receives from src, modelling a
// full-duplex exchange (both directions overlap, as in MPI_Sendrecv on a
// bidirectional link).
func (c *Comm) Sendrecv(dst int, sbuf Buf, src int) Buf {
	c.Send(dst, sbuf)
	return c.Recv(src)
}

// Result summarises one collective execution across all ranks.
type Result struct {
	MaxClock float64   // completion time: the slowest rank's final clock
	Clocks   []float64 // per-rank final clocks
	Sent     int       // total messages sent
}

// Run executes fn once per rank, each on its own goroutine with a fresh
// Comm starting at clock 0, and waits for all to finish. A panic in any
// rank is recovered and returned as an error naming the rank.
func Run(model *netmodel.Model, fn func(*Comm)) (Result, error) {
	w := NewWorld(model)
	n := model.Ranks()
	comms := make([]*Comm, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		comms[r] = &Comm{w: w, rank: r}
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("simmpi: rank %d panicked: %v", r, p)
				}
			}()
			fn(comms[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Clocks: make([]float64, n)}
	for r, c := range comms {
		res.Clocks[r] = c.clock
		res.Sent += c.sent
		if c.clock > res.MaxClock {
			res.MaxClock = c.clock
		}
	}
	return res, nil
}
