package simmpi

import (
	"math"
	"testing"
	"testing/quick"

	"acclaim/internal/cluster"
	"acclaim/internal/netmodel"
)

func testModel(t testing.TB, nodes, ppn int) *netmodel.Model {
	t.Helper()
	mach := cluster.Machine{Nodes: 256, NodesPerRack: 16, CoresPerNode: 64}
	alloc, err := cluster.Contiguous(mach, 0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := netmodel.New(netmodel.DefaultParams(), netmodel.DefaultEnv(), alloc, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBufBasics(t *testing.T) {
	b := BytesBuf([]byte{1, 2, 3, 4})
	if !b.HasData() || b.N != 4 {
		t.Fatal("BytesBuf wrong")
	}
	s := b.Slice(1, 3)
	if s.N != 2 || s.Data[0] != 2 || s.Data[1] != 3 {
		t.Errorf("Slice = %+v", s)
	}
	tb := MakeBuf(10)
	if tb.HasData() || tb.N != 10 {
		t.Fatal("MakeBuf wrong")
	}
	if ts := tb.Slice(2, 7); ts.N != 5 || ts.HasData() {
		t.Errorf("timing Slice = %+v", ts)
	}
}

func TestBufClone(t *testing.T) {
	b := BytesBuf([]byte{1, 2})
	c := b.Clone()
	c.Data[0] = 99
	if b.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
	if tc := MakeBuf(5).Clone(); tc.HasData() || tc.N != 5 {
		t.Error("timing Clone wrong")
	}
}

func TestBufConcat(t *testing.T) {
	a := BytesBuf([]byte{1, 2})
	b := BytesBuf([]byte{3})
	c := a.Concat(b)
	if c.N != 3 || c.Data[2] != 3 {
		t.Errorf("Concat = %+v", c)
	}
	// Mixed data/timing concat degrades to timing-only.
	m := a.Concat(MakeBuf(4))
	if m.N != 6 || m.HasData() {
		t.Errorf("mixed Concat = %+v", m)
	}
}

func TestBufCopyInto(t *testing.T) {
	dst := BytesBuf(make([]byte, 4))
	dst.CopyInto(1, BytesBuf([]byte{7, 8}))
	if dst.Data[1] != 7 || dst.Data[2] != 8 {
		t.Errorf("CopyInto = %v", dst.Data)
	}
	// Bounds are validated even in timing mode.
	defer func() {
		if recover() == nil {
			t.Error("out-of-range CopyInto should panic")
		}
	}()
	MakeBuf(2).CopyInto(1, MakeBuf(5))
}

func TestBufSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad Slice should panic")
		}
	}()
	MakeBuf(3).Slice(2, 5)
}

func TestOpCombine(t *testing.T) {
	sum := BytesBuf([]byte{250, 1})
	OpSum.Combine(sum, BytesBuf([]byte{10, 2}))
	if sum.Data[0] != 4 || sum.Data[1] != 3 { // 250+10 mod 256 = 4
		t.Errorf("OpSum = %v", sum.Data)
	}
	max := BytesBuf([]byte{5, 9})
	OpMax.Combine(max, BytesBuf([]byte{7, 3}))
	if max.Data[0] != 7 || max.Data[1] != 9 {
		t.Errorf("OpMax = %v", max.Data)
	}
	xor := BytesBuf([]byte{0xFF})
	OpXor.Combine(xor, BytesBuf([]byte{0x0F}))
	if xor.Data[0] != 0xF0 {
		t.Errorf("OpXor = %v", xor.Data)
	}
}

// Property: all ops are commutative and associative on random buffers.
func TestOpProperties(t *testing.T) {
	for _, op := range []Op{OpSum, OpMax, OpXor} {
		op := op
		f := func(a, b, c []byte) bool {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			if len(c) < n {
				n = len(c)
			}
			a, b, c = a[:n], b[:n], c[:n]
			// (a op b) op c == a op (b op c), and a op b == b op a.
			ab := BytesBuf(append([]byte(nil), a...))
			op.Combine(ab, BytesBuf(b))
			ba := BytesBuf(append([]byte(nil), b...))
			op.Combine(ba, BytesBuf(a))
			for i := 0; i < n; i++ {
				if ab.Data[i] != ba.Data[i] {
					return false
				}
			}
			abc1 := BytesBuf(append([]byte(nil), ab.Data...))
			op.Combine(abc1, BytesBuf(c))
			bc := BytesBuf(append([]byte(nil), b...))
			op.Combine(bc, BytesBuf(c))
			abc2 := BytesBuf(append([]byte(nil), a...))
			op.Combine(abc2, bc)
			for i := 0; i < n; i++ {
				if abc1.Data[i] != abc2.Data[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("op %v: %v", op, err)
		}
	}
}

func TestPingPongTiming(t *testing.T) {
	model := testModel(t, 2, 1) // ranks 0 and 1 on different nodes, same rack
	const bytes = 1024
	res, err := Run(model, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, MakeBuf(bytes))
			c.Recv(1)
		case 1:
			b := c.Recv(0)
			if b.N != bytes {
				panic("wrong size")
			}
			c.Send(0, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected round trip: 2 * (overhead + alpha + bytes/bw).
	p := netmodel.DefaultParams()
	oneWay := p.SendOverhead + p.Latency[netmodel.IntraRack] + bytes/p.Bandwidth[netmodel.IntraRack]
	want := 2 * oneWay
	if math.Abs(res.MaxClock-want) > 1e-9 {
		t.Errorf("round trip = %v, want %v", res.MaxClock, want)
	}
	if res.Sent != 2 {
		t.Errorf("Sent = %d, want 2", res.Sent)
	}
}

func TestRecvWaitsForArrival(t *testing.T) {
	model := testModel(t, 2, 1)
	res, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(1000) // sender is busy first
			c.Send(1, MakeBuf(8))
		} else {
			b := c.Recv(0)
			_ = b
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver must not finish before 1000us + transfer.
	if res.Clocks[1] < 1000 {
		t.Errorf("receiver clock %v ignores sender compute", res.Clocks[1])
	}
}

func TestRecvDoesNotWaitIfAlreadyLater(t *testing.T) {
	model := testModel(t, 2, 1)
	res, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, MakeBuf(8))
		} else {
			c.Compute(5000)
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver clock should be exactly 5000: message already arrived.
	if res.Clocks[1] != 5000 {
		t.Errorf("receiver clock = %v, want 5000", res.Clocks[1])
	}
}

func TestFIFOPerSource(t *testing.T) {
	model := testModel(t, 2, 1)
	_, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, BytesBuf([]byte{1}))
			c.Send(1, BytesBuf([]byte{2}))
			c.Send(1, BytesBuf([]byte{3}))
		} else {
			for want := byte(1); want <= 3; want++ {
				b := c.Recv(0)
				if b.Data[0] != want {
					panic("out of order delivery")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDataIsolation(t *testing.T) {
	// Sender mutating its buffer after Send must not corrupt delivery.
	model := testModel(t, 2, 1)
	_, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			buf := BytesBuf([]byte{42})
			c.Send(1, buf)
			buf.Data[0] = 0
		} else {
			if b := c.Recv(0); b.Data[0] != 42 {
				panic("send did not isolate data")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	model := testModel(t, 2, 1)
	res, err := Run(model, func(c *Comm) {
		peer := 1 - c.Rank()
		got := c.Sendrecv(peer, BytesBuf([]byte{byte(c.Rank())}), peer)
		if got.Data[0] != byte(peer) {
			panic("wrong exchange payload")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full duplex: both ranks finish at overhead + transfer, not 2x.
	p := netmodel.DefaultParams()
	want := p.SendOverhead + p.Latency[netmodel.IntraRack] + 1/p.Bandwidth[netmodel.IntraRack]
	if math.Abs(res.MaxClock-want) > 1e-9 {
		t.Errorf("sendrecv time = %v, want %v", res.MaxClock, want)
	}
}

func TestIntraNodeFasterThanNetwork(t *testing.T) {
	model := testModel(t, 2, 2) // ranks 0,1 node 0; ranks 2,3 node 1
	timeBetween := func(a, b int) float64 {
		res, err := Run(model, func(c *Comm) {
			if c.Rank() == a {
				c.Send(b, MakeBuf(4096))
			} else if c.Rank() == b {
				c.Recv(a)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxClock
	}
	if ti, tn := timeBetween(0, 1), timeBetween(0, 2); ti >= tn {
		t.Errorf("intra-node %v not faster than network %v", ti, tn)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	model := testModel(t, 2, 1)
	_, err := Run(model, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 must not deadlock: it does no communication.
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestSelfSendPanics(t *testing.T) {
	model := testModel(t, 2, 1)
	_, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(0, MakeBuf(1))
		}
	})
	if err == nil {
		t.Fatal("self-send should be reported as an error")
	}
}

func TestComputeNegativePanics(t *testing.T) {
	model := testModel(t, 2, 1)
	_, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(-1)
		}
	})
	if err == nil {
		t.Fatal("negative compute should be reported as an error")
	}
}

func TestStats(t *testing.T) {
	model := testModel(t, 2, 1)
	_, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, MakeBuf(1))
			c.Send(1, MakeBuf(1))
			s, r := c.Stats()
			if s != 2 || r != 0 {
				panic("sender stats wrong")
			}
		} else {
			c.Recv(0)
			c.Recv(0)
			s, r := c.Stats()
			if s != 0 || r != 2 {
				panic("receiver stats wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksFanIn(t *testing.T) {
	// 8 nodes x 4 ppn = 32 ranks all send to rank 0.
	model := testModel(t, 8, 4)
	n := model.Ranks()
	res, err := Run(model, func(c *Comm) {
		if c.Rank() == 0 {
			total := byte(0)
			for src := 1; src < n; src++ {
				b := c.Recv(src)
				total += b.Data[0]
			}
			if total != byte(n*(n-1)/2) {
				panic("fan-in sum wrong")
			}
		} else {
			c.Send(0, BytesBuf([]byte{byte(c.Rank())}))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n-1 {
		t.Errorf("Sent = %d, want %d", res.Sent, n-1)
	}
}
