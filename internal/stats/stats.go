// Package stats implements the statistical machinery of the ACCLAiM
// paper: the jackknife variance estimate (Section IV-A, after Efron &
// Stein), the average-slowdown autotuner quality metric (Section II-C2),
// and the convergence detectors used to stop training — the classic
// average-slowdown threshold and ACCLAiM's cumulative-variance window
// criterion (Section VI-C).
package stats

import (
	"errors"
	"math"
	"sort"
	"sync"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central elements
// for even lengths). It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// JackknifeVariance computes the jackknife variance of the values p
// exactly as laid out in Section IV-A of the paper:
//
//	x_p   = mean(p)
//	x_i   = mean of p with p_i removed
//	sigma² = Σ (x_p − x_i)² / (n − 1)
//
// For n < 2 the variance is 0 (a single prediction carries no spread).
//
// In ACCLAiM, p holds the per-tree predictions of a random-forest
// regressor at one candidate point (Wager et al.), so sigma² measures the
// model's uncertainty there.
func JackknifeVariance(p []float64) float64 {
	n := len(p)
	if n < 2 {
		return 0
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	xp := sum / float64(n)
	var acc float64
	for _, v := range p {
		// Mean with v removed: (sum - v)/(n-1). The deviation from the
		// full mean simplifies to (v - xp)/(n-1), but we follow the
		// paper's formulation literally for clarity.
		xi := (sum - v) / float64(n-1)
		d := xp - xi
		acc += d * d
	}
	return acc / float64(n-1)
}

// ErrMismatch is returned when paired slices differ in length.
var ErrMismatch = errors.New("stats: mismatched slice lengths")

// AvgSlowdown computes the paper's autotuner quality metric. selected[i]
// is the execution time of the algorithm the autotuner chose for test
// scenario i; optimal[i] is the execution time of the best algorithm for
// that scenario. The result is mean(selected/optimal) and is >= 1 when
// optimal really is optimal; 1.0 means every selection was perfect.
func AvgSlowdown(selected, optimal []float64) (float64, error) {
	if len(selected) != len(optimal) {
		return 0, ErrMismatch
	}
	if len(selected) == 0 {
		return 0, errors.New("stats: AvgSlowdown of empty inputs")
	}
	var s float64
	for i := range selected {
		if optimal[i] <= 0 {
			return 0, errors.New("stats: non-positive optimal time")
		}
		s += selected[i] / optimal[i]
	}
	return s / float64(len(selected)), nil
}

// ConvergenceCriterion is the paper's default average-slowdown bound: a
// model whose selections average no more than 3% slower than optimal is
// "good enough" to stop training.
const ConvergenceCriterion = 1.03

// ThresholdDetector declares convergence once an observed metric stays at
// or below Limit. It mirrors the average-slowdown criterion used by FACT
// and the paper's Figure 10 markers. The zero value is not ready for
// use; construct with NewThresholdDetector.
//
// All detectors in this package are safe for concurrent use: once the
// scoring sweep feeding a detector runs on a worker pool, the ledger
// and its convergence state become shared, and Observe may be called
// from multiple goroutines. Note that with concurrent observers the
// *order* of observations is scheduling-dependent; deterministic runs
// should funnel observations through one goroutine (as the tuners do)
// and rely on the lock only as a guard rail.
type ThresholdDetector struct {
	Limit float64

	mu        sync.Mutex
	converged bool      // guarded by mu
	history   []float64 // guarded by mu
}

// NewThresholdDetector returns a detector with the given limit.
func NewThresholdDetector(limit float64) *ThresholdDetector {
	return &ThresholdDetector{Limit: limit}
}

// Observe records a metric sample and returns true once converged.
// Convergence latches: after the first sample at or below the limit the
// detector stays converged.
func (d *ThresholdDetector) Observe(v float64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.history = append(d.history, v)
	if v <= d.Limit {
		d.converged = true
	}
	return d.converged
}

// Converged reports whether the detector has latched.
func (d *ThresholdDetector) Converged() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.converged
}

// History returns a copy of all observed samples in order.
func (d *ThresholdDetector) History() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.history...)
}

// VarianceWindowDetector implements ACCLAiM's test-set-free convergence
// criterion (Section VI-C): training stops once Window consecutive
// iterations each change the cumulative variance by less than Epsilon.
//
// The paper uses Window = 4 and Epsilon = 1e-9 on its (absolute) variance
// scale; because our simulated times are on a different scale, Epsilon is
// configurable and Relative may be set to compare |Δv|/max(|v|, 1e-30)
// instead of the absolute delta.
type VarianceWindowDetector struct {
	Window   int     // number of consecutive small deltas required
	Epsilon  float64 // delta bound
	Relative bool    // interpret Epsilon as a relative change

	mu        sync.Mutex
	last      float64   // guarded by mu
	have      bool      // guarded by mu
	smallRun  int       // guarded by mu
	converged bool      // guarded by mu
	history   []float64 // guarded by mu
}

// NewVarianceWindowDetector returns a detector with the paper's default
// window of four consecutive iterations.
func NewVarianceWindowDetector(epsilon float64, relative bool) *VarianceWindowDetector {
	return &VarianceWindowDetector{Window: 4, Epsilon: epsilon, Relative: relative}
}

// Observe records a cumulative-variance sample and returns true once the
// run of small deltas reaches the window length. Convergence latches.
func (d *VarianceWindowDetector) Observe(v float64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.history = append(d.history, v)
	if d.converged {
		return true
	}
	if d.have {
		delta := math.Abs(v - d.last)
		if d.Relative {
			den := math.Max(math.Abs(d.last), 1e-30)
			delta /= den
		}
		if delta < d.Epsilon {
			d.smallRun++
		} else {
			d.smallRun = 0
		}
		if d.smallRun >= d.Window {
			d.converged = true
		}
	}
	d.last = v
	d.have = true
	return d.converged
}

// Converged reports whether the detector has latched.
func (d *VarianceWindowDetector) Converged() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.converged
}

// History returns a copy of all observed samples in order.
func (d *VarianceWindowDetector) History() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.history...)
}

// Reset clears all state so the detector can be reused.
func (d *VarianceWindowDetector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last, d.have, d.smallRun, d.converged, d.history = 0, false, 0, false, nil
}

// StallDetector declares convergence when a noisy series stabilises: it
// compares the mean of the last Window samples with the mean of the
// Window before it and latches once the relative change (in either
// direction) falls below MinImprove. It is the noise-robust form of
// the paper's "four consecutive iterations with a small variance delta"
// criterion — retraining an ensemble adds mean-zero churn to the
// cumulative variance, so windowed means are compared instead of raw
// consecutive deltas, and a still-rising series (the model discovering
// new structure) blocks convergence just like a still-falling one.
type StallDetector struct {
	Window     int     // window length (default 5 when zero)
	MinImprove float64 // required relative change per window to keep training

	mu        sync.Mutex
	history   []float64 // guarded by mu
	converged bool      // guarded by mu
}

// Observe records a sample and returns true once improvement has
// stalled. Convergence latches.
func (d *StallDetector) Observe(v float64) bool {
	w := d.Window
	if w <= 0 {
		w = 5
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.history = append(d.history, v)
	if d.converged {
		return true
	}
	if len(d.history) < 2*w {
		return false
	}
	var cur, prev float64
	n := len(d.history)
	for i := n - w; i < n; i++ {
		cur += d.history[i]
	}
	for i := n - 2*w; i < n-w; i++ {
		prev += d.history[i]
	}
	cur /= float64(w)
	prev /= float64(w)
	if prev <= 0 {
		d.converged = true
		return true
	}
	if math.Abs(prev-cur)/prev < d.MinImprove {
		d.converged = true
	}
	return d.converged
}

// Converged reports whether the detector has latched.
func (d *StallDetector) Converged() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.converged
}

// History returns a copy of all observed samples in order.
func (d *StallDetector) History() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.history...)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It panics on empty input.
func Summarize(xs []float64) Summary {
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	std := 0.0
	if len(xs) > 1 {
		std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return Summary{
		N:      len(xs),
		Mean:   m,
		Std:    std,
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
