package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if m := Mean(xs); !almostEq(m, 2.8, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if m := Min(xs); m != 1 {
		t.Errorf("Min = %v", m)
	}
	if m := Max(xs); m != 5 {
		t.Errorf("Max = %v", m)
	}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even Median = %v", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestJackknifeVarianceKnown(t *testing.T) {
	// For p = (0, 2): xp = 1, x1 = 2, x2 = 0; sigma^2 = ((1-2)^2 + (1-0)^2)/1 = 2.
	if v := JackknifeVariance([]float64{0, 2}); !almostEq(v, 2, 1e-12) {
		t.Errorf("JackknifeVariance(0,2) = %v, want 2", v)
	}
	// Identical predictions carry zero variance.
	if v := JackknifeVariance([]float64{5, 5, 5, 5}); v != 0 {
		t.Errorf("constant variance = %v, want 0", v)
	}
	if v := JackknifeVariance([]float64{7}); v != 0 {
		t.Errorf("singleton variance = %v, want 0", v)
	}
	if v := JackknifeVariance(nil); v != 0 {
		t.Errorf("empty variance = %v, want 0", v)
	}
}

// The jackknife deviation simplifies algebraically: x_p - x_i = (p_i - x_p)/(n-1),
// so sigma^2 = sum (p_i - x_p)^2 / (n-1)^3. Check the implementation against
// this closed form on random inputs.
func TestJackknifeVarianceClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.NormFloat64() * 10
		}
		got := JackknifeVariance(p)
		xp := Mean(p)
		var ss float64
		for _, v := range p {
			ss += (v - xp) * (v - xp)
		}
		want := ss / math.Pow(float64(n-1), 3)
		return almostEq(got, want, 1e-9*(1+want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: jackknife variance is translation invariant and scales with c^2.
func TestJackknifeVarianceScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		p := make([]float64, n)
		q := make([]float64, n)
		r := make([]float64, n)
		for i := range p {
			p[i] = rng.NormFloat64()
			q[i] = p[i] + 100
			r[i] = 3 * p[i]
		}
		vp, vq, vr := JackknifeVariance(p), JackknifeVariance(q), JackknifeVariance(r)
		return almostEq(vp, vq, 1e-9*(1+vp)) && almostEq(vr, 9*vp, 1e-9*(1+vr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgSlowdown(t *testing.T) {
	got, err := AvgSlowdown([]float64{10, 20}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 1.5, 1e-12) {
		t.Errorf("AvgSlowdown = %v, want 1.5", got)
	}
	if _, err := AvgSlowdown([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want mismatch error")
	}
	if _, err := AvgSlowdown(nil, nil); err == nil {
		t.Error("want empty error")
	}
	if _, err := AvgSlowdown([]float64{1}, []float64{0}); err == nil {
		t.Error("want non-positive optimal error")
	}
}

// Property: slowdown of optimal selections is exactly 1, and any other
// selection can only increase it.
func TestAvgSlowdownOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		opt := make([]float64, n)
		sel := make([]float64, n)
		for i := range opt {
			opt[i] = 1 + rng.Float64()*100
			sel[i] = opt[i] * (1 + rng.Float64())
		}
		perfect, err1 := AvgSlowdown(opt, opt)
		worse, err2 := AvgSlowdown(sel, opt)
		return err1 == nil && err2 == nil && almostEq(perfect, 1, 1e-12) && worse >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdDetector(t *testing.T) {
	d := NewThresholdDetector(ConvergenceCriterion)
	if d.Observe(1.5) {
		t.Error("converged too early")
	}
	if d.Observe(1.04) {
		t.Error("1.04 should not converge at 1.03")
	}
	if !d.Observe(1.03) {
		t.Error("1.03 should converge (inclusive)")
	}
	if !d.Observe(9.9) {
		t.Error("convergence should latch")
	}
	if len(d.History()) != 4 {
		t.Errorf("history length = %d", len(d.History()))
	}
}

func TestVarianceWindowDetector(t *testing.T) {
	d := NewVarianceWindowDetector(0.01, false)
	seq := []float64{10, 5, 3, 3.001, 3.002, 3.001, 3.0005}
	var conv []bool
	for _, v := range seq {
		conv = append(conv, d.Observe(v))
	}
	// Deltas: 5, 2, .001, .001, .001, .0005 — the fourth small delta is
	// the last one, so convergence happens exactly at the final sample.
	for i := 0; i < len(seq)-1; i++ {
		if conv[i] {
			t.Fatalf("converged early at sample %d", i)
		}
	}
	if !conv[len(seq)-1] {
		t.Fatal("did not converge at final sample")
	}
}

func TestVarianceWindowDetectorRunReset(t *testing.T) {
	d := NewVarianceWindowDetector(0.01, false)
	// Three small deltas, one big delta, then three small again: a big
	// delta must reset the run, so no convergence.
	for _, v := range []float64{1, 1.001, 1.002, 1.003, 2, 2.001, 2.002, 2.003} {
		if d.Observe(v) {
			t.Fatal("converged despite interrupted run")
		}
	}
	if d.Observe(2.0035) != true {
		t.Fatal("fourth consecutive small delta should converge")
	}
}

func TestVarianceWindowDetectorRelative(t *testing.T) {
	d := NewVarianceWindowDetector(0.01, true)
	// Relative deltas of 0.5% each.
	v := 1000.0
	converged := false
	for i := 0; i < 5; i++ {
		converged = d.Observe(v)
		v *= 1.005
	}
	if !converged {
		t.Error("relative detector should converge on 0.5% steps with 1% epsilon")
	}
}

func TestVarianceWindowDetectorReset(t *testing.T) {
	d := NewVarianceWindowDetector(1, false)
	for i := 0; i < 10; i++ {
		d.Observe(0)
	}
	if !d.Converged() {
		t.Fatal("should have converged")
	}
	d.Reset()
	if d.Converged() || len(d.History()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almostEq(g, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v", g)
	}
	if g := GeoMean([]float64{2, -1}); g != 0 {
		t.Errorf("GeoMean with non-positive = %v, want 0", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

// --- Concurrency: once scoring runs on a worker pool, the autotune
// ledger and its convergence detector become shared state. These tests
// hammer each detector from many goroutines; run with -race.

func TestThresholdDetectorConcurrent(t *testing.T) {
	d := NewThresholdDetector(1.03)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Every goroutine's last observation is below the limit,
				// so the detector must latch regardless of interleaving.
				v := 2.0
				if i == perG-1 {
					v = 1.0
				}
				d.Observe(v)
				_ = d.Converged()
				_ = d.History()
			}
		}(g)
	}
	wg.Wait()
	if !d.Converged() {
		t.Error("detector did not latch")
	}
	if got := len(d.History()); got != goroutines*perG {
		t.Errorf("history length = %d, want %d (lost observations)", got, goroutines*perG)
	}
}

func TestVarianceWindowDetectorConcurrent(t *testing.T) {
	d := NewVarianceWindowDetector(1e-9, false)
	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// A constant series: every delta is zero, so however the
				// observations interleave the run of small deltas grows
				// and the detector must latch.
				d.Observe(5.0)
				_ = d.Converged()
				_ = d.History()
			}
		}()
	}
	wg.Wait()
	if !d.Converged() {
		t.Error("constant series did not converge")
	}
	if got := len(d.History()); got != goroutines*perG {
		t.Errorf("history length = %d, want %d", got, goroutines*perG)
	}
	d.Reset()
	if d.Converged() || len(d.History()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestStallDetectorConcurrent(t *testing.T) {
	d := &StallDetector{Window: 5, MinImprove: 0.05}
	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// A flat series stalls by definition under any
				// interleaving.
				d.Observe(10.0)
				_ = d.Converged()
				_ = d.History()
			}
		}()
	}
	wg.Wait()
	if !d.Converged() {
		t.Error("flat series did not stall")
	}
	if got := len(d.History()); got != goroutines*perG {
		t.Errorf("history length = %d, want %d", got, goroutines*perG)
	}
}

// TestHistoryIsACopy: History must hand back a snapshot, not the live
// backing array a concurrent Observe could be appending to.
func TestHistoryIsACopy(t *testing.T) {
	d := NewThresholdDetector(0)
	d.Observe(5)
	h := d.History()
	h[0] = -1
	if d.History()[0] != 5 {
		t.Error("History returned the live slice, not a copy")
	}
}
