// Package traces synthesises application collective-communication
// traces in the style of the LLNL Open Data Initiative corpus the paper
// profiles for Figure 4 (Wang, Snir & Mohror). The real traces are not
// redistributable, so each of the four modelled applications gets a
// generative model of its collective calls: which collectives it
// issues, and a message-size distribution built from element counts the
// application's numerics would produce — power-of-two buffer sizes for
// structured solvers, arbitrary (nearly always non-P2) counts for
// unstructured ones. The aggregate non-P2 share lands near the paper's
// 15.7%, and per-app shares are stable across job scales, matching
// Figure 4's observation.
package traces

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"acclaim/internal/coll"
	"acclaim/internal/featspace"
)

// Call is one collective call site aggregated over an application run.
type Call struct {
	Coll     coll.Collective
	MsgBytes int
	Count    int // times the call executed
}

// Trace is a synthesised application communication profile.
type Trace struct {
	App   string
	Nodes int
	Calls []Call
}

// appModel drives the generator for one application.
type appModel struct {
	name string
	// arbitraryShare is the probability a call site's element count is
	// an arbitrary problem-size-derived value (nearly always non-P2)
	// rather than a power-of-two buffer.
	arbitraryShare float64
	collectives    []coll.Collective
	callSites      int
	has1024        bool // 1024-node trace data availability (ParaDis lacks it)
}

// The four modelled applications. Shares are calibrated so the
// count-weighted aggregate non-P2 share is ~15.7% (Figure 4).
var models = []appModel{
	{name: "AMG", arbitraryShare: 0.10,
		collectives: []coll.Collective{coll.Allreduce, coll.Bcast}, callSites: 500, has1024: true},
	{name: "LAMMPS", arbitraryShare: 0.13,
		collectives: []coll.Collective{coll.Allreduce, coll.Bcast, coll.Allgather}, callSites: 420, has1024: true},
	{name: "ParaDis", arbitraryShare: 0.24,
		collectives: []coll.Collective{coll.Allreduce, coll.Allgather, coll.Reduce}, callSites: 460, has1024: false},
	{name: "Quicksilver", arbitraryShare: 0.16,
		collectives: []coll.Collective{coll.Allreduce, coll.Reduce, coll.Bcast}, callSites: 380, has1024: true},
}

// Apps returns the modelled application names.
func Apps() []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.name
	}
	return out
}

// Scales returns the two job scales of Figure 4.
func Scales() []int { return []int{64, 1024} }

// ErrUnavailable is returned when the corpus lacks a trace (Figure 4:
// "1024-node trace data is unavailable on ParaDis").
var ErrUnavailable = errors.New("traces: trace data unavailable")

func modelFor(app string) (appModel, error) {
	for _, m := range models {
		if m.name == app {
			return m, nil
		}
	}
	return appModel{}, fmt.Errorf("traces: unknown application %q", app)
}

// Collectives returns the collectives an application predominantly uses
// — the "collective list" an ACCLAiM user submits with a job
// (Section V, User Input).
func Collectives(app string) ([]coll.Collective, error) {
	m, err := modelFor(app)
	if err != nil {
		return nil, err
	}
	return append([]coll.Collective(nil), m.collectives...), nil
}

// Synthesize generates the trace of one application at one job scale.
// The generation is deterministic for a given seed.
func Synthesize(app string, nodes int, seed int64) (*Trace, error) {
	m, err := modelFor(app)
	if err != nil {
		return nil, err
	}
	if nodes >= 1024 && !m.has1024 {
		return nil, fmt.Errorf("%w: %s at %d nodes", ErrUnavailable, app, nodes)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(nodes)*2654435761))
	tr := &Trace{App: app, Nodes: nodes}
	const elemSize = 8 // double precision
	for s := 0; s < m.callSites; s++ {
		var count int
		if rng.Float64() < m.arbitraryShare {
			// Problem-derived count: e.g. local row counts, surface
			// elements — any value in a wide range.
			count = 1 + rng.Intn(1<<uint(4+rng.Intn(13)))
		} else {
			// Buffer-sized count: a power of two.
			count = 1 << uint(rng.Intn(15))
		}
		call := Call{
			Coll:     m.collectives[rng.Intn(len(m.collectives))],
			MsgBytes: count * elemSize,
			Count:    1 + rng.Intn(500),
		}
		tr.Calls = append(tr.Calls, call)
	}
	sort.Slice(tr.Calls, func(i, j int) bool { return tr.Calls[i].MsgBytes < tr.Calls[j].MsgBytes })
	return tr, nil
}

// NonP2Fraction returns the count-weighted share of collective calls
// with non-power-of-two message sizes — the Figure 4 metric.
func (t *Trace) NonP2Fraction() float64 {
	var nonP2, total float64
	for _, c := range t.Calls {
		total += float64(c.Count)
		if !featspace.IsP2(c.MsgBytes) {
			nonP2 += float64(c.Count)
		}
	}
	if total == 0 {
		return 0
	}
	return nonP2 / total
}

// TotalCalls returns the number of collective invocations in the trace.
func (t *Trace) TotalCalls() int {
	n := 0
	for _, c := range t.Calls {
		n += c.Count
	}
	return n
}

// CollectiveShare returns the fraction of calls per collective.
func (t *Trace) CollectiveShare() map[coll.Collective]float64 {
	out := make(map[coll.Collective]float64)
	total := float64(t.TotalCalls())
	if total == 0 {
		return out
	}
	for _, c := range t.Calls {
		out[c.Coll] += float64(c.Count) / total
	}
	return out
}

// RecommendedCollectives derives a tuning list from a measured trace —
// what a profiler like Intel APS would report for users who do not know
// their application's collective mix (Section V, User Input). It
// returns the collectives responsible for at least minShare of the
// trace's collective calls, ordered by share descending.
func RecommendedCollectives(t *Trace, minShare float64) []coll.Collective {
	shares := t.CollectiveShare()
	var out []coll.Collective
	for _, c := range coll.Collectives() {
		if shares[c] >= minShare {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return shares[out[i]] > shares[out[j]] })
	return out
}

// ProfileRow is one bar of Figure 4.
type ProfileRow struct {
	App        string
	Nodes      int
	NonP2Share float64
	Available  bool
}

// ProfileAll profiles every application at both scales, reproducing the
// Figure 4 table (with the ParaDis 1024-node gap).
func ProfileAll(seed int64) []ProfileRow {
	var rows []ProfileRow
	for _, app := range Apps() {
		for _, scale := range Scales() {
			tr, err := Synthesize(app, scale, seed)
			if err != nil {
				rows = append(rows, ProfileRow{App: app, Nodes: scale})
				continue
			}
			rows = append(rows, ProfileRow{App: app, Nodes: scale, NonP2Share: tr.NonP2Fraction(), Available: true})
		}
	}
	return rows
}

// AggregateNonP2 returns the mean non-P2 share over all available rows
// — the paper's headline 15.7%.
func AggregateNonP2(rows []ProfileRow) float64 {
	var sum float64
	n := 0
	for _, r := range rows {
		if r.Available {
			sum += r.NonP2Share
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
