package traces

import (
	"errors"
	"math"
	"testing"

	"acclaim/internal/coll"
	"acclaim/internal/featspace"
)

func TestAppsAndScales(t *testing.T) {
	if len(Apps()) != 4 {
		t.Fatalf("apps = %v, want 4 (the Figure 4 applications)", Apps())
	}
	if len(Scales()) != 2 {
		t.Fatalf("scales = %v", Scales())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	t1, err := Synthesize("AMG", 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Synthesize("AMG", 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Calls) != len(t2.Calls) {
		t.Fatal("non-deterministic call count")
	}
	for i := range t1.Calls {
		if t1.Calls[i] != t2.Calls[i] {
			t.Fatal("non-deterministic trace")
		}
	}
}

func TestSynthesizeUnknownApp(t *testing.T) {
	if _, err := Synthesize("hpl", 64, 1); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestParaDis1024Unavailable(t *testing.T) {
	_, err := Synthesize("ParaDis", 1024, 1)
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("ParaDis@1024 error = %v, want ErrUnavailable", err)
	}
	if _, err := Synthesize("ParaDis", 64, 1); err != nil {
		t.Errorf("ParaDis@64 should be available: %v", err)
	}
}

func TestNonP2FractionPerApp(t *testing.T) {
	// Per-app share must be positive, below 50%, and roughly stable
	// across scales (Figure 4: "nearly the same for both small- and
	// large-scale jobs").
	for _, app := range Apps() {
		t64, err := Synthesize(app, 64, 42)
		if err != nil {
			t.Fatal(err)
		}
		f64 := t64.NonP2Fraction()
		if f64 <= 0 || f64 >= 0.5 {
			t.Errorf("%s non-P2 share = %v", app, f64)
		}
		t1024, err := Synthesize(app, 1024, 42)
		if errors.Is(err, ErrUnavailable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		f1024 := t1024.NonP2Fraction()
		if math.Abs(f64-f1024) > 0.15 {
			t.Errorf("%s share varies too much across scales: %v vs %v", app, f64, f1024)
		}
	}
}

func TestAggregateNearPaper(t *testing.T) {
	rows := ProfileAll(42)
	agg := AggregateNonP2(rows)
	// The paper reports 15.7%; our generator should land in the same
	// neighbourhood.
	if agg < 0.10 || agg > 0.25 {
		t.Errorf("aggregate non-P2 share = %v, want ~0.157", agg)
	}
	// ParaDis@1024 must appear as unavailable.
	foundGap := false
	for _, r := range rows {
		if r.App == "ParaDis" && r.Nodes == 1024 {
			if r.Available {
				t.Error("ParaDis@1024 should be unavailable")
			}
			foundGap = true
		}
	}
	if !foundGap {
		t.Error("missing ParaDis@1024 row")
	}
	if len(rows) != 8 {
		t.Errorf("rows = %d, want 8 (4 apps x 2 scales)", len(rows))
	}
}

func TestCollectivesList(t *testing.T) {
	cs, err := Collectives("LAMMPS")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("empty collective list")
	}
	for _, c := range cs {
		found := false
		for _, all := range coll.Collectives() {
			if c == all {
				found = true
			}
		}
		if !found {
			t.Errorf("unknown collective %v", c)
		}
	}
	if _, err := Collectives("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr, err := Synthesize("Quicksilver", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalCalls() <= 0 {
		t.Error("no calls")
	}
	shares := tr.CollectiveShare()
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("collective shares sum to %v", sum)
	}
	// Message sizes are positive multiples of the element size and the
	// calls are sorted by size.
	prev := 0
	for _, c := range tr.Calls {
		if c.MsgBytes <= 0 || c.MsgBytes%8 != 0 {
			t.Errorf("bad message size %d", c.MsgBytes)
		}
		if c.MsgBytes < prev {
			t.Error("calls not sorted")
		}
		prev = c.MsgBytes
	}
}

func TestP2CallsExist(t *testing.T) {
	// Most calls must still be P2 (the 84%): sanity for the mixture.
	tr, _ := Synthesize("AMG", 64, 7)
	p2 := 0
	for _, c := range tr.Calls {
		if featspace.IsP2(c.MsgBytes) {
			p2++
		}
	}
	if p2 == 0 {
		t.Error("no P2 call sites at all")
	}
}

func TestRecommendedCollectives(t *testing.T) {
	tr, err := Synthesize("ParaDis", 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecommendedCollectives(tr, 0.05)
	if len(rec) == 0 {
		t.Fatal("no recommendations")
	}
	shares := tr.CollectiveShare()
	for i := 1; i < len(rec); i++ {
		if shares[rec[i]] > shares[rec[i-1]] {
			t.Error("recommendations not ordered by share")
		}
	}
	for _, c := range rec {
		if shares[c] < 0.05 {
			t.Errorf("%v below the share threshold", c)
		}
	}
	// A 100% threshold recommends nothing.
	if got := RecommendedCollectives(tr, 1.01); len(got) != 0 {
		t.Errorf("impossible threshold returned %v", got)
	}
}
